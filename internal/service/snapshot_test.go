package service

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ccf/internal/workload"
)

func testSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	a0, a1 := 0.0, 0.25
	return &Snapshot{
		Shard:  2,
		Nodes:  4,
		Engine: EngineConfig{CoOptimize: true, NetworkScheduler: "varys"},
		Seq:    2,
		Clock:  0.25,
		Digest: 0xdeadbeefcafe,
		Jobs: []JobSpec{
			{Name: "a", Arrival: &a0, Gen: &workload.Config{
				Nodes:          4,
				CustomerTuples: 50,
				OrderTuples:    500,
				PayloadBytes:   1000,
				Zipf:           0.8,
				Seed:           7,
			}},
			{Name: "b", Arrival: &a1, Chunks: [][]int64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot(t)
	b, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Shard != s.Shard || got.Nodes != s.Nodes || got.Seq != s.Seq ||
		got.Digest != s.Digest || got.Engine != s.Engine || len(got.Jobs) != len(s.Jobs) {
		t.Fatalf("roundtrip mismatch: got %+v want %+v", got, s)
	}
	if got.Jobs[1].Chunks[3][1] != 8 {
		t.Fatalf("chunk matrix did not survive: %v", got.Jobs[1].Chunks)
	}
}

func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	s := testSnapshot(t)
	good, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrSnapshotFormat},
		{"header only", func(b []byte) []byte { return b[:16] }, ErrSnapshotFormat},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-10] }, ErrSnapshotFormat},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xAA) }, ErrSnapshotFormat},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrSnapshotFormat},
		{"future version", func(b []byte) []byte { b[7] = 0x7F; return b }, ErrSnapshotVersion},
		{"flipped payload byte", func(b []byte) []byte { b[20] ^= 0x40; return b }, ErrSnapshotChecksum},
		{"flipped crc byte", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrSnapshotChecksum},
		{"huge length header", func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[8:16], 1<<40)
			return b
		}, ErrSnapshotFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			got, err := DecodeSnapshot(b)
			if got != nil {
				t.Fatalf("damaged snapshot decoded to %+v", got)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want errors.Is(…, %v)", err, tc.want)
			}
		})
	}
}

func TestSnapshotDecodeRejectsInconsistentPayload(t *testing.T) {
	s := testSnapshot(t)
	s.Seq = 5 // five claimed, two recorded
	b, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := DecodeSnapshot(b); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("seq/jobs mismatch: error = %v, want ErrSnapshotFormat", err)
	}

	s = testSnapshot(t)
	s.Jobs[0].Arrival = nil
	b, err = EncodeSnapshot(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := DecodeSnapshot(b); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("unresolved arrival: error = %v, want ErrSnapshotFormat", err)
	}
}

func TestSnapshotFileAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-000.snap")
	s := testSnapshot(t)
	if err := writeSnapshotFile(path, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Overwrite with different state: the rename must replace, and no temp
	// files may linger.
	s.Seq = 1
	s.Jobs = s.Jobs[:1]
	if err := writeSnapshotFile(path, s); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	got, err := readSnapshotFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Seq != 1 || len(got.Jobs) != 1 {
		t.Fatalf("rewrite not visible: seq=%d jobs=%d", got.Seq, len(got.Jobs))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
	// Missing file reads as a fresh shard, not an error.
	if got, err := readSnapshotFile(filepath.Join(dir, "absent.snap")); got != nil || err != nil {
		t.Fatalf("missing snapshot: got %v, %v; want nil, nil", got, err)
	}
}

// walAppendN journals n records with seqs start..start+n-1.
func walAppendN(t *testing.T, path string, start uint64, n int) {
	t.Helper()
	w, err := openWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < n; i++ {
		a := float64(i)
		spec := &JobSpec{Name: "j", Arrival: &a, Chunks: [][]int64{{1}, {2}}}
		if err := w.Append(start+uint64(i), spec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func replayAll(t *testing.T, path string, afterSeq uint64) (seqs []uint64, torn bool, err error) {
	t.Helper()
	_, torn, err = replayWAL(path, afterSeq, func(seq uint64, spec *JobSpec) error {
		seqs = append(seqs, seq)
		return nil
	})
	return seqs, torn, err
}

func TestWALReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.wal")
	walAppendN(t, path, 1, 5)

	seqs, torn, err := replayAll(t, path, 0)
	if err != nil || torn {
		t.Fatalf("replay: torn=%v err=%v", torn, err)
	}
	if len(seqs) != 5 || seqs[0] != 1 || seqs[4] != 5 {
		t.Fatalf("replayed seqs %v", seqs)
	}

	// Records at or below afterSeq were compacted into the snapshot; skip.
	seqs, _, err = replayAll(t, path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 4 {
		t.Fatalf("suffix replay seqs %v", seqs)
	}

	// Missing WAL is a fresh shard.
	seqs, torn, err = replayAll(t, filepath.Join(dir, "absent.wal"), 0)
	if len(seqs) != 0 || torn || err != nil {
		t.Fatalf("missing wal: %v %v %v", seqs, torn, err)
	}
}

func TestWALTornTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.wal")
	walAppendN(t, path, 1, 3)
	// Simulate a crash mid-append: half a record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"crc":123,"job":{"name":"tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	seqs, torn, err := replayAll(t, path, 0)
	if err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if !torn {
		t.Fatal("torn tail not reported")
	}
	if len(seqs) != 3 {
		t.Fatalf("replayed %v, want the 3 intact records", seqs)
	}
}

func TestWALMidFileCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.wal")
	walAppendN(t, path, 1, 3)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the first record's job payload (not the tail): still valid JSON,
	// but the record CRC no longer matches.
	b = bytes.Replace(b, []byte(`"name":"j"`), []byte(`"name":"x"`), 1)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayAll(t, path, 0); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("mid-file corruption: error = %v, want ErrWALCorrupt", err)
	}
}

func TestWALSequenceGapIsFatal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.wal")
	walAppendN(t, path, 1, 2)
	walAppendN(t, path, 5, 1) // 3 and 4 went missing
	if _, _, err := replayAll(t, path, 0); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("sequence gap: error = %v, want ErrWALCorrupt", err)
	}
}

func TestWALTruncateAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.wal")
	w, err := openWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	a := 0.0
	if err := w.Append(1, &JobSpec{Name: "j", Arrival: &a, Chunks: [][]int64{{1}, {2}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	// New appends land at the start of the emptied file and replay cleanly.
	if err := w.Append(2, &JobSpec{Name: "k", Arrival: &a, Chunks: [][]int64{{3}, {4}}}); err != nil {
		t.Fatal(err)
	}
	seqs, torn, err := replayAll(t, path, 1)
	if err != nil || torn {
		t.Fatalf("replay after truncate: torn=%v err=%v", torn, err)
	}
	if len(seqs) != 1 || seqs[0] != 2 {
		t.Fatalf("seqs after truncate: %v", seqs)
	}
}
