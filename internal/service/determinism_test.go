package service

// TestKillRestartDeterminism is the acceptance test for the crash-safety
// contract: a daemon killed mid-trace and restarted from its state directory
// must produce byte-identical decisions for the rest of the trace, for any
// kill point. Run A processes a job stream uninterrupted; run B processes
// the same stream but is Kill()ed (no final snapshot — recovery comes from
// the periodic snapshots plus the WAL) partway through and restored into a
// fresh pool. Every decision both runs made for the same job must marshal to
// the same JSON, and the final engine digests must agree.

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"ccf/internal/workload"
)

// detJobs builds a deterministic ~40-job stream for one seed: mixed
// generated and explicit-chunk jobs, mixed placers, a few degraded and
// explicit-arrival submissions, keys spread across shards.
func detJobs(seed uint64, nodes int) []JobSpec {
	placers := []string{"", "hash", "mini"}
	jobs := make([]JobSpec, 0, 40)
	for i := 0; i < 40; i++ {
		spec := JobSpec{
			Name:   fmt.Sprintf("s%d-job-%02d", seed, i),
			Key:    fmt.Sprintf("key-%d", (seed+uint64(i)*7)%13),
			Placer: placers[i%len(placers)],
		}
		if i%4 == 3 {
			spec.PlacementOnly = true
		}
		if i%5 == 2 {
			// Explicit arrival far ahead of any shard clock, so it is taken
			// as-is; the rest use the "now" path (arrival = shard clock).
			a := float64(i) * 10
			spec.Arrival = &a
		}
		if i%3 == 0 {
			rows := make([][]int64, nodes)
			for r := range rows {
				row := make([]int64, 2*nodes)
				for k := range row {
					row[k] = int64(1000 + (seed*31+uint64(i*r+k)*17)%5000)
				}
				rows[r] = row
			}
			spec.Chunks = rows
		} else {
			spec.Gen = &workload.Config{
				Nodes:          nodes,
				CustomerTuples: 40,
				OrderTuples:    400,
				PayloadBytes:   1000,
				Zipf:           0.8,
				Seed:           seed*100 + uint64(i),
				JitterFrac:     0.05,
			}
		}
		jobs = append(jobs, spec)
	}
	return jobs
}

// runStream submits jobs sequentially through a pool and returns each
// decision marshaled to JSON (sequential submission keeps the arrival
// resolution deterministic, which is what the byte-identity claim is about).
func runStream(t *testing.T, p *Pool, jobs []JobSpec) [][]byte {
	t.Helper()
	ctx := context.Background()
	out := make([][]byte, 0, len(jobs))
	for i, spec := range jobs {
		dec, err := p.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		b, err := json.Marshal(dec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func detConfig(dir string) Config {
	return Config{
		Shards:        3,
		Nodes:         4,
		QueueDepth:    8,
		Dir:           dir,
		SnapshotEvery: 8,
		DegradeAfter:  -1, // wall-clock queue wait must not affect determinism runs
		Engine:        EngineConfig{CoOptimize: true, NetworkScheduler: "varys"},
	}
}

func startPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return p
}

func poolStates(t *testing.T, p *Pool) []ShardState {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	states, err := p.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return states
}

func TestKillRestartDeterminism(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			jobs := detJobs(seed, 4)
			kill := 15 + int(seed)%15 // vary the kill point with the seed

			// Run A: uninterrupted reference.
			ref := startPool(t, detConfig(t.TempDir()))
			refDecs := runStream(t, ref, jobs)
			refStates := poolStates(t, ref)
			if err := ref.Drain(context.Background()); err != nil {
				t.Fatalf("reference drain: %v", err)
			}

			// Run B: kill after `kill` jobs, restart from the same state dir,
			// finish the stream.
			dir := t.TempDir()
			b1 := startPool(t, detConfig(dir))
			gotDecs := runStream(t, b1, jobs[:kill])
			b1.Kill() // no final snapshot; recovery is journal-only

			b2 := startPool(t, detConfig(dir))
			gotDecs = append(gotDecs, runStream(t, b2, jobs[kill:])...)
			gotStates := poolStates(t, b2)
			if err := b2.Drain(context.Background()); err != nil {
				t.Fatalf("restarted drain: %v", err)
			}

			for i := range refDecs {
				if string(refDecs[i]) != string(gotDecs[i]) {
					t.Fatalf("decision %d diverged after kill at %d:\nref: %s\ngot: %s",
						i, kill, refDecs[i], gotDecs[i])
				}
			}
			for i := range refStates {
				if refStates[i] != gotStates[i] {
					t.Fatalf("shard %d state diverged: ref %+v got %+v", i, refStates[i], gotStates[i])
				}
			}
		})
	}
}

// TestRestartResumesSeq pins that a restart continues the WAL sequence
// instead of renumbering: the first post-restart decision on a shard carries
// seq = (jobs already on that shard) + 1.
func TestRestartResumesSeq(t *testing.T) {
	dir := t.TempDir()
	cfg := detConfig(dir)
	cfg.Shards = 1
	p := startPool(t, cfg)
	jobs := detJobs(3, 4)[:10]
	runStream(t, p, jobs)
	p.Kill()

	p2 := startPool(t, cfg)
	dec, err := p2.Submit(context.Background(), jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if dec.Seq != 11 {
		t.Fatalf("post-restart seq = %d, want 11", dec.Seq)
	}
	if err := p2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRefusesMismatchedConfig pins ErrSnapshotMismatch: a state
// directory written under one engine identity must not silently replay into
// another (the decisions would differ).
func TestRestoreRefusesMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := detConfig(dir)
	cfg.Shards = 1
	p := startPool(t, cfg)
	runStream(t, p, detJobs(1, 4)[:10])
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.Engine.NetworkScheduler = "fifo"
	p2, err := NewPool(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Start(context.Background()); err == nil {
		t.Fatal("start with mismatched engine config succeeded")
	}
}
