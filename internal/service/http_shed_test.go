package service

// Shed-path HTTP behaviour: the deterministic per-shard Retry-After jitter
// on 429s, and the pooled JSON encode path's allocation guarantee.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestShedRetryAfterJitterPerShard pins the 429 backoff fix: the hint is the
// configured base plus a deterministic jitter keyed by (shard, journal seq),
// so two shards shedding at the same instant stagger their clients instead
// of synchronizing a retry storm — and the value is reproducible, not
// random, so this test can assert it exactly.
func TestShedRetryAfterJitterPerShard(t *testing.T) {
	const base = 2 * time.Second
	cfg := Config{
		Shards:     2,
		Nodes:      4,
		QueueDepth: 1,
		RetryAfter: base,
		Engine:     EngineConfig{CoOptimize: true},
	}
	p := startPool(t, cfg)
	srv := httptest.NewServer(NewHandler(p, HTTPConfig{RequestTimeout: 10 * time.Second}))
	defer srv.Close()

	keyFor := func(shardID int) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("jitter-%d", i)
			if int(hashKey(k))%cfg.Shards == shardID {
				return k
			}
		}
	}

	// Gate both run loops and fill each shard's depth-1 queue, so the next
	// submission per shard sheds.
	releases := make([]func(), cfg.Shards)
	fills := make([]chan reply, cfg.Shards)
	for id, sh := range p.shards {
		releases[id] = gateShard(sh)
		spec := genSpec(fmt.Sprintf("fill-%d", id), uint64(id))
		spec.Key = keyFor(id)
		rep := make(chan reply, 1)
		if err := sh.trySubmit(&request{spec: spec, ctx: context.Background(), enq: time.Now(), reply: rep}); err != nil {
			t.Fatal(err)
		}
		fills[id] = rep
	}

	shedMs := func(shardID int) int64 {
		t.Helper()
		spec := genSpec(fmt.Sprintf("shed-%d", shardID), 99)
		spec.Key = keyFor(shardID)
		resp, body := postJob(t, srv.URL, spec)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("shard %d: %d %s, want 429", shardID, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("shard %d: 429 without Retry-After header", shardID)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("shard %d: body %q: %v", shardID, body, err)
		}
		return eb.RetryAfterMs
	}

	got := make([]int64, cfg.Shards)
	for id := range p.shards {
		got[id] = shedMs(id)
		want := (base + time.Duration(shedJitter(id, 0)*float64(base))).Milliseconds()
		if got[id] != want {
			t.Fatalf("shard %d retry_after_ms = %d, want %d (base %d + fnv jitter)",
				id, got[id], want, base.Milliseconds())
		}
		if got[id] < base.Milliseconds() || got[id] >= 2*base.Milliseconds() {
			t.Fatalf("shard %d retry_after_ms = %d outside [base, 2*base)", id, got[id])
		}
		if again := shedMs(id); again != got[id] {
			t.Fatalf("shard %d jitter not deterministic: %d then %d", id, got[id], again)
		}
	}
	if got[0] == got[1] {
		t.Fatalf("both shards emitted retry_after_ms = %d; per-shard jitter must differ", got[0])
	}

	for id := range p.shards {
		releases[id]()
		<-fills[id]
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// decisionFixture is a representative submit response for the encode path.
func decisionFixture() *Decision {
	return &Decision{
		Name: "alloc-probe", Key: "k", Shard: 1, Seq: 42, Arrival: 3.25,
		Placement: []int{0, 1, 2, 3}, Completed: 7, Clock: 3.5,
		BacklogEgress: []int64{1, 2, 3, 4}, BacklogIngress: []int64{4, 3, 2, 1},
	}
}

// TestWriteJSONAllocs guards the pooled encode path: steady-state response
// encoding must not allocate a fresh encoder or buffer per reply. The bound
// leaves room for the header-map set and encoder-internal scratch, not for a
// per-call buffer (which alone would blow well past it).
func TestWriteJSONAllocs(t *testing.T) {
	dec := decisionFixture()
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, dec) // warm the pool and the body buffer
	allocs := testing.AllocsPerRun(200, func() {
		rec.Body.Reset()
		writeJSON(rec, http.StatusOK, dec)
	})
	if allocs > 4 {
		t.Fatalf("writeJSON allocates %.1f objects per response, want <= 4", allocs)
	}
}

func BenchmarkWriteJSON(b *testing.B) {
	dec := decisionFixture()
	rec := httptest.NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Body.Reset()
		writeJSON(rec, http.StatusOK, dec)
	}
}
