package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts Parse's robustness contract: any input either parses or
// returns an error — never a panic, and never memory proportional to forged
// counts rather than actual input. The seeds include the crashers the
// fuzzer originally found: a negative reducer count (panicked make) and a
// huge forged reducer count (preallocation OOM shape).
func FuzzParse(f *testing.F) {
	// Valid traces.
	f.Add("2 1\n0 0 1 0 1 1:10\n")
	f.Add("3 2\n# comment\n0 0 2 0 1 2 1:5 2:7.5\n1 100 1 2 1 0:1\n")
	f.Add("1 0\n")
	// Crashers and hostile inputs.
	f.Add("0 1 0 0 0 -1")          // negative reducer count: make(map, -1) panicked
	f.Add("1 1 0 0 0 999999999")   // forged count: preallocation OOM shape
	f.Add("-3 0")                  // negative rack count
	f.Add("2 -1")                  // negative job count
	f.Add("2 1\n0 -5 0 0")         // negative arrival
	f.Add("2 1\n0 0 -2 0")         // negative mapper count
	f.Add("2 1\n0 0 1 9 1 1:10\n") // mapper outside rack range
	f.Add("2 1\n0 0 1 0 1 1:")     // truncated reducer entry
	f.Add("2 1\n0 0 1 0 1 x:10\n") // non-numeric reducer location
	f.Add("2 1\n0 0 1 0 1 1:-4\n") // negative megabytes
	f.Add("2 1")                   // truncated job list
	f.Add("2 1\n0 0 1 0 1 1:10 7") // trailing tokens
	f.Add("")
	f.Add("\xff\xfe garbage ::")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Successful parses must satisfy the structural invariants the
		// rest of the pipeline assumes.
		if tr.NumRacks <= 0 {
			t.Fatalf("parsed trace with non-positive NumRacks %d", tr.NumRacks)
		}
		for _, j := range tr.Jobs {
			if j.ArrivalMillis < 0 {
				t.Fatalf("job %d has negative arrival", j.ID)
			}
			for _, m := range j.Mappers {
				if m < 0 || m >= tr.NumRacks {
					t.Fatalf("job %d mapper %d outside [0,%d)", j.ID, m, tr.NumRacks)
				}
			}
			for loc, mb := range j.ReducerMB {
				if loc < 0 || loc >= tr.NumRacks || mb < 0 {
					t.Fatalf("job %d reducer %d:%g invalid", j.ID, loc, mb)
				}
			}
		}
		// Expansion and round-trip must not panic on accepted input.
		_ = tr.Coflows()
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write of parsed trace failed: %v", err)
		}
		if _, err := Parse(&buf); err != nil {
			t.Fatalf("round-trip re-parse failed: %v", err)
		}
	})
}
