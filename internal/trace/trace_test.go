package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `
# two racks... actually four; comments and blank lines are ignored

4 2
1 0 2 0 1 2 2:10 3:20
2 500 1 3 1 0:5
`

func TestParseSample(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRacks != 4 || len(tr.Jobs) != 2 {
		t.Fatalf("parsed %d racks / %d jobs, want 4/2", tr.NumRacks, len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if j.ID != 1 || j.ArrivalMillis != 0 {
		t.Errorf("job 0 header = %+v", j)
	}
	if len(j.Mappers) != 2 || j.Mappers[0] != 0 || j.Mappers[1] != 1 {
		t.Errorf("mappers = %v, want [0 1]", j.Mappers)
	}
	if j.ReducerMB[2] != 10 || j.ReducerMB[3] != 20 {
		t.Errorf("reducers = %v", j.ReducerMB)
	}
	if tr.Jobs[1].ArrivalMillis != 500 {
		t.Errorf("job 1 arrival = %d, want 500", tr.Jobs[1].ArrivalMillis)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"missing jobs":      "4",
		"truncated job":     "4 1\n1 0 2 0",
		"bad reducer pair":  "4 1\n1 0 1 0 1 nope",
		"bad reducer loc":   "4 1\n1 0 1 0 1 x:5",
		"reducer loc range": "4 1\n1 0 1 0 1 9:5",
		"mapper loc range":  "4 1\n1 0 1 9 1 0:5",
		"negative size":     "4 1\n1 0 1 0 1 1:-3",
		"trailing tokens":   "4 1\n1 0 1 0 1 1:5 extra",
		"non-numeric":       "four 1\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		racks := 2 + rng.Intn(6)
		tr := &Trace{NumRacks: racks}
		for j := 0; j < rng.Intn(5); j++ {
			job := Job{ID: j, ArrivalMillis: int64(rng.Intn(10_000)), ReducerMB: map[int]float64{}}
			for m := 0; m < 1+rng.Intn(4); m++ {
				job.Mappers = append(job.Mappers, rng.Intn(racks))
			}
			for r := 0; r < 1+rng.Intn(4); r++ {
				job.ReducerMB[rng.Intn(racks)] += float64(1+rng.Intn(100)) / 4
			}
			tr.Jobs = append(tr.Jobs, job)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil {
			return false
		}
		if got.NumRacks != tr.NumRacks || len(got.Jobs) != len(tr.Jobs) {
			return false
		}
		for i, j := range tr.Jobs {
			g := got.Jobs[i]
			if g.ID != j.ID || g.ArrivalMillis != j.ArrivalMillis || len(g.Mappers) != len(j.Mappers) {
				return false
			}
			for loc, mb := range j.ReducerMB {
				if math.Abs(g.ReducerMB[loc]-mb) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCoflowsExpansion(t *testing.T) {
	tr := &Trace{NumRacks: 3, Jobs: []Job{{
		ID: 7, ArrivalMillis: 1500,
		Mappers:   []int{0, 1},
		ReducerMB: map[int]float64{2: 10},
	}}}
	cfs := tr.Coflows()
	if len(cfs) != 1 {
		t.Fatalf("expanded %d coflows, want 1", len(cfs))
	}
	c := cfs[0]
	if c.Arrival != 1.5 {
		t.Errorf("arrival = %g s, want 1.5", c.Arrival)
	}
	if len(c.Flows) != 2 {
		t.Fatalf("flows = %d, want 2 (10 MB split over 2 mappers)", len(c.Flows))
	}
	for _, f := range c.Flows {
		if f.Dst != 2 {
			t.Errorf("flow dst = %d, want 2", f.Dst)
		}
		if math.Abs(f.Size-5e6) > 1e-6 {
			t.Errorf("flow size = %g, want 5e6", f.Size)
		}
	}
}

func TestCoflowsDropSelfLoops(t *testing.T) {
	tr := &Trace{NumRacks: 2, Jobs: []Job{{
		ID:        0,
		Mappers:   []int{0},
		ReducerMB: map[int]float64{0: 10, 1: 10},
	}}}
	cfs := tr.Coflows()
	if len(cfs[0].Flows) != 1 {
		t.Fatalf("flows = %d, want 1 (mapper-local reducer dropped)", len(cfs[0].Flows))
	}
	if cfs[0].Flows[0].Dst != 1 {
		t.Errorf("surviving flow dst = %d, want 1", cfs[0].Flows[0].Dst)
	}
}

func TestFromVolumesRoundTripsThroughCoflows(t *testing.T) {
	n := 3
	vol := []int64{
		0, 2_000_000, 0,
		0, 0, 3_000_000,
		1_000_000, 0, 0,
	}
	tr, err := FromVolumes(n, vol, 250)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRacks != n {
		t.Errorf("racks = %d, want %d", tr.NumRacks, n)
	}
	got := make([]float64, n*n)
	for _, c := range tr.Coflows() {
		if c.Arrival != 0.25 {
			t.Errorf("arrival = %g, want 0.25", c.Arrival)
		}
		for _, f := range c.Flows {
			got[f.Src*n+f.Dst] += f.Size
		}
	}
	for i := range vol {
		if math.Abs(got[i]-float64(vol[i])) > 1 {
			t.Fatalf("volume (%d→%d) = %g, want %d", i/n, i%n, got[i], vol[i])
		}
	}
}

func TestFromVolumesRejectsBadMatrix(t *testing.T) {
	if _, err := FromVolumes(3, make([]int64, 4), 0); err == nil {
		t.Error("FromVolumes accepted a 4-entry matrix for n=3")
	}
}
