// Package trace reads and writes coflow traces in the CoflowSim "benchmark"
// format used by the Varys/Aalo artifacts (and therefore by the paper's
// experimental pipeline, Figure 4): scheduling output is handed to the
// simulator as a list of jobs with mapper locations and per-reducer shuffle
// megabytes.
//
// Format (whitespace separated, one job per line after the header):
//
//	<numRacks> <numJobs>
//	<jobID> <arrivalMillis> <numMappers> <m_1> ... <m_M> <numReducers> <r_1:MB_1> ... <r_R:MB_R>
//
// Mapper/reducer locations are rack (machine) indices in [0, numRacks).
// Each reducer r_j receives MB_j megabytes split evenly across the mappers,
// which is exactly how CoflowSim expands a job into flows.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ccf/internal/coflow"
)

// Job is one coflow in trace form.
type Job struct {
	ID            int
	ArrivalMillis int64
	Mappers       []int
	// ReducerMB maps reducer machine → megabytes it must receive.
	ReducerMB map[int]float64
}

// Trace is a parsed benchmark file.
type Trace struct {
	NumRacks int
	Jobs     []Job
}

// Parse reads a benchmark-format trace.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var tokens []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tokens = append(tokens, strings.Fields(line)...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	pos := 0
	next := func() (string, error) {
		if pos >= len(tokens) {
			return "", io.ErrUnexpectedEOF
		}
		t := tokens[pos]
		pos++
		return t, nil
	}
	nextInt := func(what string) (int, error) {
		t, err := next()
		if err != nil {
			return 0, fmt.Errorf("trace: missing %s: %w", what, err)
		}
		v, err := strconv.Atoi(t)
		if err != nil {
			return 0, fmt.Errorf("trace: bad %s %q: %w", what, t, err)
		}
		return v, nil
	}

	racks, err := nextInt("numRacks")
	if err != nil {
		return nil, err
	}
	if racks <= 0 {
		return nil, fmt.Errorf("trace: numRacks must be positive, got %d", racks)
	}
	numJobs, err := nextInt("numJobs")
	if err != nil {
		return nil, err
	}
	if numJobs < 0 {
		return nil, fmt.Errorf("trace: negative numJobs %d", numJobs)
	}
	tr := &Trace{NumRacks: racks}
	for j := 0; j < numJobs; j++ {
		var job Job
		if job.ID, err = nextInt("jobID"); err != nil {
			return nil, err
		}
		arr, err := nextInt("arrival")
		if err != nil {
			return nil, err
		}
		if arr < 0 {
			return nil, fmt.Errorf("trace: job %d has negative arrival %d", job.ID, arr)
		}
		job.ArrivalMillis = int64(arr)
		nm, err := nextInt("numMappers")
		if err != nil {
			return nil, err
		}
		if nm < 0 {
			return nil, fmt.Errorf("trace: job %d has negative mapper count %d", job.ID, nm)
		}
		for m := 0; m < nm; m++ {
			loc, err := nextInt("mapper location")
			if err != nil {
				return nil, err
			}
			if loc < 0 || loc >= racks {
				return nil, fmt.Errorf("trace: job %d mapper at rack %d outside [0,%d)", job.ID, loc, racks)
			}
			job.Mappers = append(job.Mappers, loc)
		}
		nr, err := nextInt("numReducers")
		if err != nil {
			return nil, err
		}
		if nr < 0 {
			return nil, fmt.Errorf("trace: job %d has negative reducer count %d", job.ID, nr)
		}
		// Cap the preallocation hint by the tokens actually present: a
		// forged count must not let make() reserve attacker-chosen memory
		// before the per-entry parse fails at end of input.
		hint := nr
		if rest := len(tokens) - pos; hint > rest {
			hint = rest
		}
		job.ReducerMB = make(map[int]float64, hint)
		for r := 0; r < nr; r++ {
			t, err := next()
			if err != nil {
				return nil, fmt.Errorf("trace: job %d missing reducer %d: %w", job.ID, r, err)
			}
			parts := strings.SplitN(t, ":", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("trace: job %d reducer entry %q not loc:MB", job.ID, t)
			}
			loc, err := strconv.Atoi(parts[0])
			if err != nil {
				return nil, fmt.Errorf("trace: job %d reducer location %q: %w", job.ID, parts[0], err)
			}
			if loc < 0 || loc >= racks {
				return nil, fmt.Errorf("trace: job %d reducer at rack %d outside [0,%d)", job.ID, loc, racks)
			}
			mb, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: job %d reducer MB %q: %w", job.ID, parts[1], err)
			}
			if mb < 0 {
				return nil, fmt.Errorf("trace: job %d reducer %d has negative size %g", job.ID, loc, mb)
			}
			job.ReducerMB[loc] += mb
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	if pos != len(tokens) {
		return nil, fmt.Errorf("trace: %d trailing tokens after %d jobs", len(tokens)-pos, numJobs)
	}
	return tr, nil
}

// Write emits the trace in benchmark format.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", tr.NumRacks, len(tr.Jobs))
	for _, j := range tr.Jobs {
		fmt.Fprintf(bw, "%d %d %d", j.ID, j.ArrivalMillis, len(j.Mappers))
		for _, m := range j.Mappers {
			fmt.Fprintf(bw, " %d", m)
		}
		fmt.Fprintf(bw, " %d", len(j.ReducerMB))
		locs := make([]int, 0, len(j.ReducerMB))
		for loc := range j.ReducerMB {
			locs = append(locs, loc)
		}
		sort.Ints(locs)
		for _, loc := range locs {
			fmt.Fprintf(bw, " %d:%g", loc, j.ReducerMB[loc])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Coflows expands the trace into simulator coflows the way CoflowSim does:
// each reducer's megabytes split evenly across the job's mappers, flows from
// mapper machine to reducer machine, self-loops dropped.
func (tr *Trace) Coflows() []*coflow.Coflow {
	out := make([]*coflow.Coflow, 0, len(tr.Jobs))
	for _, j := range tr.Jobs {
		c := &coflow.Coflow{ID: j.ID, Name: fmt.Sprintf("job-%d", j.ID), Arrival: float64(j.ArrivalMillis) / 1000}
		if len(j.Mappers) == 0 {
			out = append(out, c)
			continue
		}
		locs := make([]int, 0, len(j.ReducerMB))
		for loc := range j.ReducerMB {
			locs = append(locs, loc)
		}
		sort.Ints(locs)
		fid := 0
		for _, rl := range locs {
			per := j.ReducerMB[rl] * 1e6 / float64(len(j.Mappers))
			for _, ml := range j.Mappers {
				if ml == rl || per <= 0 {
					continue
				}
				f := &coflow.Flow{ID: fid, Coflow: c, Src: ml, Dst: rl, Size: per, Remaining: per}
				c.Flows = append(c.Flows, f)
				fid++
			}
		}
		out = append(out, c)
	}
	return out
}

// FromVolumes converts an n×n byte-volume matrix into a single-job trace,
// modelling every source node as a mapper with a dedicated reducer entry —
// the inverse of Coflows for CCF's shuffle output. Volumes are emitted as
// one single-mapper job per source so the even-split expansion is lossless.
func FromVolumes(n int, vol []int64, arrivalMillis int64) (*Trace, error) {
	if len(vol) != n*n {
		return nil, fmt.Errorf("trace: volume matrix has %d entries, want %d", len(vol), n*n)
	}
	tr := &Trace{NumRacks: n}
	id := 0
	for i := 0; i < n; i++ {
		red := map[int]float64{}
		for j := 0; j < n; j++ {
			if i == j || vol[i*n+j] == 0 {
				continue
			}
			red[j] = float64(vol[i*n+j]) / 1e6
		}
		if len(red) == 0 {
			continue
		}
		tr.Jobs = append(tr.Jobs, Job{ID: id, ArrivalMillis: arrivalMillis, Mappers: []int{i}, ReducerMB: red})
		id++
	}
	return tr, nil
}
