// Package topology generalises the non-blocking switch to real data-center
// fabrics, realising the paper's link-set constraint in full:
//
//	Σ_{flows f crossing link l} b_f ≤ R_l        ∀ l  (constraint 1.5)
//
// where each flow f_ij owns a link set L_ij. The base model (every L_ij =
// {egress_i, ingress_j} with equal R) is NewNonBlocking; NewLeafSpine builds
// the two-tier topology the RAPIER discussion targets — hosts under ToR
// switches whose uplinks to a non-blocking spine may be oversubscribed, so
// cross-rack traffic contends on shared rack links.
//
// The package provides exact single-coflow CCT under MADD over links, a
// link-level fluid simulator for online verification, and RackAwareCCF — the
// paper's Algorithm 1 extended with rack-uplink/downlink terms, which stays
// O(p·(n + racks)) thanks to the same top-2 bookkeeping as the base placer.
package topology

import (
	"fmt"
	"math"

	"ccf/internal/coflow"
)

// LinkKind labels the role of a link in the fabric.
type LinkKind int

// Link kinds.
const (
	HostUp LinkKind = iota
	HostDown
	RackUp
	RackDown
)

// Link is one directed capacity constraint.
type Link struct {
	ID   int
	Kind LinkKind
	// Index is the host (HostUp/HostDown) or rack (RackUp/RackDown) index.
	Index int
	Cap   float64 // bytes/sec
}

// Topology is a set of hosts, links, and per-pair paths.
type Topology struct {
	N     int
	Links []Link
	// rackOf[i] is host i's rack (all zero for the non-blocking fabric).
	rackOf []int
	racks  int
	// hostUp[i], hostDown[i], rackUp[r], rackDown[r] are link IDs.
	hostUp, hostDown, rackUp, rackDown []int
}

// NewNonBlocking builds the paper's base model as a degenerate topology:
// one rack with an infinitely fast core, so only host links constrain.
func NewNonBlocking(n int, bw float64) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: need positive host count, got %d", n)
	}
	if bw <= 0 {
		return nil, fmt.Errorf("topology: need positive bandwidth, got %g", bw)
	}
	return build(1, n, bw, math.Inf(1))
}

// NewLeafSpine builds racks × hostsPerRack hosts; every host has hostBw
// up/down links to its ToR, and every ToR has uplinkBw up/down links to a
// non-blocking spine. uplinkBw < hostsPerRack × hostBw means the core is
// oversubscribed (the interesting regime).
func NewLeafSpine(racks, hostsPerRack int, hostBw, uplinkBw float64) (*Topology, error) {
	if racks <= 0 || hostsPerRack <= 0 {
		return nil, fmt.Errorf("topology: need positive racks (%d) and hosts per rack (%d)", racks, hostsPerRack)
	}
	if hostBw <= 0 || uplinkBw <= 0 {
		return nil, fmt.Errorf("topology: need positive bandwidths (host %g, uplink %g)", hostBw, uplinkBw)
	}
	return build(racks, hostsPerRack, hostBw, uplinkBw)
}

func build(racks, perRack int, hostBw, uplinkBw float64) (*Topology, error) {
	n := racks * perRack
	t := &Topology{
		N: n, racks: racks,
		rackOf:   make([]int, n),
		hostUp:   make([]int, n),
		hostDown: make([]int, n),
		rackUp:   make([]int, racks),
		rackDown: make([]int, racks),
	}
	add := func(kind LinkKind, idx int, cap_ float64) int {
		id := len(t.Links)
		t.Links = append(t.Links, Link{ID: id, Kind: kind, Index: idx, Cap: cap_})
		return id
	}
	for i := 0; i < n; i++ {
		t.rackOf[i] = i / perRack
		t.hostUp[i] = add(HostUp, i, hostBw)
		t.hostDown[i] = add(HostDown, i, hostBw)
	}
	for r := 0; r < racks; r++ {
		t.rackUp[r] = add(RackUp, r, uplinkBw)
		t.rackDown[r] = add(RackDown, r, uplinkBw)
	}
	return t, nil
}

// Racks returns the number of racks.
func (t *Topology) Racks() int { return t.racks }

// RackOf returns the rack of host i.
func (t *Topology) RackOf(i int) int { return t.rackOf[i] }

// Path returns L_ij: the link IDs flow i→j traverses. Intra-rack flows use
// only host links; cross-rack flows add the two rack links.
func (t *Topology) Path(i, j int) []int {
	if t.rackOf[i] == t.rackOf[j] {
		return []int{t.hostUp[i], t.hostDown[j]}
	}
	return []int{t.hostUp[i], t.rackUp[t.rackOf[i]], t.rackDown[t.rackOf[j]], t.hostDown[j]}
}

// Oversubscription returns the rack oversubscription ratio
// (hostsPerRack × hostBw / uplinkBw); 0 for a single-rack fabric.
func (t *Topology) Oversubscription() float64 {
	if t.racks <= 1 {
		return 0
	}
	perRack := t.N / t.racks
	return float64(perRack) * t.Links[t.hostUp[0]].Cap / t.Links[t.rackUp[0]].Cap
}

// LinkLoads accumulates the bytes crossing every link for an n×n volume
// matrix (row-major, diagonal ignored).
func (t *Topology) LinkLoads(vol []int64) ([]int64, error) {
	if len(vol) != t.N*t.N {
		return nil, fmt.Errorf("topology: volume matrix has %d entries, want %d", len(vol), t.N*t.N)
	}
	loads := make([]int64, len(t.Links))
	for i := 0; i < t.N; i++ {
		for j := 0; j < t.N; j++ {
			v := vol[i*t.N+j]
			if i == j || v <= 0 {
				continue
			}
			for _, l := range t.Path(i, j) {
				loads[l] += v
			}
		}
	}
	return loads, nil
}

// SingleCoflowCCT is the closed-form CCT of one coflow under MADD over
// links: every flow gets rate proportional to its volume, so completion is
// bound by the most loaded link relative to its capacity.
func (t *Topology) SingleCoflowCCT(vol []int64) (float64, error) {
	loads, err := t.LinkLoads(vol)
	if err != nil {
		return 0, err
	}
	var cct float64
	for id, load := range loads {
		if load == 0 {
			continue
		}
		if x := float64(load) / t.Links[id].Cap; x > cct {
			cct = x
		}
	}
	return cct, nil
}

// ---------------------------------------------------------------------------
// Link-level fluid simulation.
// ---------------------------------------------------------------------------

// maddOverLinks assigns every non-done flow rate remaining/τ where τ is the
// bottleneck over links, consuming residual capacities. Mirrors
// coflow.maddAllocate but over arbitrary link sets.
func (t *Topology) maddOverLinks(c *coflow.Coflow, resid []float64) {
	need := make(map[int]float64)
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		for _, l := range t.Path(f.Src, f.Dst) {
			need[l] += f.Remaining
		}
	}
	tau := 0.0
	for l, v := range need {
		if resid[l] <= 0 {
			return // blocked; leave rates at zero
		}
		if x := v / resid[l]; x > tau {
			tau = x
		}
	}
	if tau == 0 {
		return
	}
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		r := f.Remaining / tau
		f.Rate += r
		for _, l := range t.Path(f.Src, f.Dst) {
			resid[l] -= r
		}
	}
}

// waterFillOverLinks max-min fair shares residual link capacity across the
// given flows (progressive filling over links).
func (t *Topology) waterFillOverLinks(flows []*coflow.Flow, resid []float64) {
	frozen := make([]bool, len(flows))
	remaining := 0
	for i, f := range flows {
		if f.Done {
			frozen[i] = true
		} else {
			remaining++
		}
	}
	for remaining > 0 {
		cnt := make(map[int]int)
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			for _, l := range t.Path(f.Src, f.Dst) {
				cnt[l]++
			}
		}
		alpha := math.Inf(1)
		for l, c := range cnt {
			if a := resid[l] / float64(c); a < alpha {
				alpha = a
			}
		}
		if math.IsInf(alpha, 1) || alpha <= 0 {
			break
		}
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			f.Rate += alpha
			for _, l := range t.Path(f.Src, f.Dst) {
				resid[l] -= alpha
			}
		}
		next := 0
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			sat := false
			for _, l := range t.Path(f.Src, f.Dst) {
				if resid[l] <= 1e-12 {
					sat = true
					break
				}
			}
			if sat {
				frozen[i] = true
			} else {
				next++
			}
		}
		if next == remaining {
			// Defensive progress guarantee.
			for i := range frozen {
				if !frozen[i] {
					frozen[i] = true
					next--
					break
				}
			}
		}
		remaining = next
	}
}

// Report mirrors netsim.Report for the link-level simulator.
type Report struct {
	Makespan   float64
	CCTs       map[int]float64
	AvgCCT     float64
	MaxCCT     float64
	TotalBytes float64
	Epochs     int
}

// Simulate runs coflows over the topology with SEBF ordering, MADD-over-
// links allocation and work-conserving backfill — Varys generalised to
// arbitrary link sets (the RAPIER setting without route choice, since the
// leaf-spine has a single path per pair).
func (t *Topology) Simulate(coflows []*coflow.Coflow) (*Report, error) {
	for _, c := range coflows {
		for _, f := range c.Flows {
			if f.Src < 0 || f.Src >= t.N || f.Dst < 0 || f.Dst >= t.N || f.Src == f.Dst {
				return nil, fmt.Errorf("topology: flow %d of coflow %d has invalid endpoints %d→%d",
					f.ID, c.ID, f.Src, f.Dst)
			}
			f.Remaining = f.Size
			f.Done = f.Size <= 0
			f.Rate = 0
		}
		c.Completed = false
		c.SentBytes = 0
	}
	rep := &Report{CCTs: make(map[int]float64, len(coflows))}
	pending := make([]*coflow.Coflow, len(coflows))
	copy(pending, coflows)
	// Insertion sort by arrival keeps this dependency-free.
	for i := 1; i < len(pending); i++ {
		for j := i; j > 0 && pending[j].Arrival < pending[j-1].Arrival; j-- {
			pending[j], pending[j-1] = pending[j-1], pending[j]
		}
	}
	var active []*coflow.Coflow
	now := 0.0
	if len(pending) > 0 {
		now = pending[0].Arrival
	}
	resid := make([]float64, len(t.Links))

	for epoch := 0; ; epoch++ {
		if epoch > 10_000_000 {
			return nil, fmt.Errorf("topology: simulation exceeded 10M epochs")
		}
		for len(pending) > 0 && pending[0].Arrival <= now+1e-12 {
			active = append(active, pending[0])
			pending = pending[1:]
		}
		live := active[:0]
		for _, c := range active {
			done := true
			for _, f := range c.Flows {
				if !f.Done {
					done = false
					break
				}
			}
			if done {
				if !c.Completed {
					c.Completed = true
					c.Completion = now
					cct, err := c.CCT()
					if err != nil {
						return nil, err
					}
					rep.CCTs[c.ID] = cct
				}
				continue
			}
			live = append(live, c)
		}
		active = live
		if len(active) == 0 {
			if len(pending) == 0 {
				break
			}
			now = pending[0].Arrival
			continue
		}

		rep.Epochs++
		for l := range resid {
			resid[l] = t.Links[l].Cap
		}
		for _, c := range active {
			for _, f := range c.Flows {
				f.Rate = 0
			}
		}
		// SEBF over link bottlenecks.
		order := append([]*coflow.Coflow(nil), active...)
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && t.bottleneck(order[j]) < t.bottleneck(order[j-1]); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, c := range order {
			t.maddOverLinks(c, resid)
		}
		var all []*coflow.Flow
		for _, c := range active {
			for _, f := range c.Flows {
				if !f.Done {
					all = append(all, f)
				}
			}
		}
		t.waterFillOverLinks(all, resid)

		dt := math.Inf(1)
		for _, f := range all {
			if f.Rate > 0 {
				if x := f.Remaining / f.Rate; x < dt {
					dt = x
				}
			}
		}
		if len(pending) > 0 {
			if x := pending[0].Arrival - now; x < dt {
				dt = x
			}
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("topology: simulation stalled with %d active coflows", len(active))
		}
		now += dt
		for _, c := range active {
			for _, f := range c.Flows {
				if f.Done || f.Rate <= 0 {
					continue
				}
				moved := math.Min(f.Rate*dt, f.Remaining)
				f.Remaining -= moved
				c.SentBytes += moved
				rep.TotalBytes += moved
				if f.Remaining <= 1e-6 {
					f.Remaining = 0
					f.Done = true
					f.EndTime = now
				}
			}
		}
	}
	rep.Makespan = now
	// Sum in input-coflow order, not map-iteration order, so the float
	// result (and anything printed from it) is deterministic run to run.
	for _, c := range coflows {
		cct, ok := rep.CCTs[c.ID]
		if !ok {
			continue
		}
		rep.AvgCCT += cct
		if cct > rep.MaxCCT {
			rep.MaxCCT = cct
		}
	}
	if len(rep.CCTs) > 0 {
		rep.AvgCCT /= float64(len(rep.CCTs))
	}
	return rep, nil
}

// bottleneck is the coflow's remaining-bytes-over-capacity bound on this
// topology (the SEBF key).
func (t *Topology) bottleneck(c *coflow.Coflow) float64 {
	load := make(map[int]float64)
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		for _, l := range t.Path(f.Src, f.Dst) {
			load[l] += f.Remaining
		}
	}
	var g float64
	for l, v := range load {
		if x := v / t.Links[l].Cap; x > g {
			g = x
		}
	}
	return g
}
