package topology

// RackAwareCCF: the paper's Algorithm 1 extended to the leaf-spine link
// sets. The objective gains two terms beyond host egress/ingress — rack
// uplink and rack downlink loads, each divided by its capacity:
//
//	T = max( egress_i/c_host, ingress_j/c_host, up_r/c_rack, down_r/c_rack )
//
// Assigning partition k to destination d (rack r_d) adds h_ik to every other
// host's egress, Σ_{i∈r} h_ik to every other rack's uplink, and the remote
// remainder to d's ingress and r_d's downlink — the same additive structure
// as the base algorithm at two granularities, so the same top-2 bookkeeping
// keeps the whole search at O(p·(n + racks)).

import (
	"fmt"
	"sort"

	"ccf/internal/partition"
)

// RackAwareCCF places partitions over a leaf-spine topology. It implements
// placement.Scheduler.
type RackAwareCCF struct {
	Topo *Topology
}

// Name implements placement.Scheduler.
func (RackAwareCCF) Name() string { return "CCF-rack" }

// top2 tracks a maximum and runner-up with the argmax index.
type top2 struct {
	v1, v2 float64
	i1     int
}

func (t *top2) reset() { t.v1, t.v2, t.i1 = -1, -1, -1 }

func (t *top2) add(i int, v float64) {
	if v > t.v1 {
		t.v2, t.v1, t.i1 = t.v1, v, i
	} else if v > t.v2 {
		t.v2 = v
	}
}

// exclude returns the max over all entries except index i.
func (t *top2) exclude(i int) float64 {
	if i == t.i1 {
		return t.v2
	}
	return t.v1
}

// Place implements placement.Scheduler.
func (c RackAwareCCF) Place(m *partition.ChunkMatrix, initial *partition.Loads) (*partition.Placement, error) {
	t := c.Topo
	if t == nil {
		return nil, fmt.Errorf("topology: RackAwareCCF needs a topology")
	}
	n, p := m.N, m.P
	if t.N != n {
		return nil, fmt.Errorf("topology: topology has %d hosts, matrix has %d nodes", t.N, n)
	}
	racks := t.racks

	hostEgCap := make([]float64, n)
	hostInCap := make([]float64, n)
	for i := 0; i < n; i++ {
		hostEgCap[i] = t.Links[t.hostUp[i]].Cap
		hostInCap[i] = t.Links[t.hostDown[i]].Cap
	}
	rackUpCap := make([]float64, racks)
	rackDownCap := make([]float64, racks)
	for r := 0; r < racks; r++ {
		rackUpCap[r] = t.Links[t.rackUp[r]].Cap
		rackDownCap[r] = t.Links[t.rackDown[r]].Cap
	}

	egress := make([]int64, n)
	ingress := make([]int64, n)
	if initial != nil {
		if len(initial.Egress) != n || len(initial.Ingress) != n {
			return nil, fmt.Errorf("topology: initial loads sized %d/%d, want %d",
				len(initial.Egress), len(initial.Ingress), n)
		}
		copy(egress, initial.Egress)
		copy(ingress, initial.Ingress)
	}
	upB := make([]int64, racks)
	downB := make([]int64, racks)

	order := make([]int, p)
	for k := range order {
		order[k] = k
	}
	maxChunk, _ := m.MaxChunk()
	sort.SliceStable(order, func(a, b int) bool {
		return maxChunk[order[a]] > maxChunk[order[b]]
	})
	tot := m.PartitionTotals()

	pl := partition.NewPlacement(p)
	col := make([]int64, n)
	rackCol := make([]int64, racks)

	var egTop, inTop, upTop, downTop top2

	for _, k := range order {
		for r := 0; r < racks; r++ {
			rackCol[r] = 0
		}
		for i := 0; i < n; i++ {
			col[i] = m.At(i, k)
			rackCol[t.rackOf[i]] += col[i]
		}
		tk := tot[k]

		egTop.reset()
		inTop.reset()
		for i := 0; i < n; i++ {
			egTop.add(i, float64(egress[i]+col[i])/hostEgCap[i])
			inTop.add(i, float64(ingress[i])/hostInCap[i])
		}
		upTop.reset()
		downTop.reset()
		for r := 0; r < racks; r++ {
			upTop.add(r, float64(upB[r]+rackCol[r])/rackUpCap[r])
			downTop.add(r, float64(downB[r])/rackDownCap[r])
		}

		bestD := -1
		bestT := 0.0
		for d := 0; d < n; d++ {
			rd := t.rackOf[d]
			T := egTop.exclude(d)
			if own := float64(egress[d]) / hostEgCap[d]; own > T {
				T = own
			}
			if v := inTop.exclude(d); v > T {
				T = v
			}
			if v := float64(ingress[d]+tk-col[d]) / hostInCap[d]; v > T {
				T = v
			}
			if v := upTop.exclude(rd); v > T {
				T = v
			}
			if own := float64(upB[rd]) / rackUpCap[rd]; own > T {
				T = own
			}
			if v := downTop.exclude(rd); v > T {
				T = v
			}
			if v := float64(downB[rd]+tk-rackCol[rd]) / rackDownCap[rd]; v > T {
				T = v
			}
			if bestD == -1 || T < bestT {
				bestD, bestT = d, T
			}
		}

		pl.Dest[k] = bestD
		rd := t.rackOf[bestD]
		for i := 0; i < n; i++ {
			if i != bestD {
				egress[i] += col[i]
			}
		}
		ingress[bestD] += tk - col[bestD]
		for r := 0; r < racks; r++ {
			if r != rd {
				upB[r] += rackCol[r]
			}
		}
		downB[rd] += tk - rackCol[rd]
	}
	return pl, nil
}

// PlacementCCT evaluates a placement's single-coflow CCT on this topology
// (closed form, MADD over links).
func (t *Topology) PlacementCCT(m *partition.ChunkMatrix, pl *partition.Placement) (float64, error) {
	vol, err := partition.FlowVolumes(m, pl)
	if err != nil {
		return 0, err
	}
	return t.SingleCoflowCCT(vol)
}
