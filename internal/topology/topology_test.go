package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/coflow"
	"ccf/internal/fbtrace"
	"ccf/internal/partition"
	"ccf/internal/placement"
)

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewNonBlocking(0, 1); err == nil {
		t.Error("NewNonBlocking accepted 0 hosts")
	}
	if _, err := NewNonBlocking(2, 0); err == nil {
		t.Error("NewNonBlocking accepted 0 bandwidth")
	}
	if _, err := NewLeafSpine(0, 4, 1, 1); err == nil {
		t.Error("NewLeafSpine accepted 0 racks")
	}
	if _, err := NewLeafSpine(2, 0, 1, 1); err == nil {
		t.Error("NewLeafSpine accepted 0 hosts per rack")
	}
	if _, err := NewLeafSpine(2, 2, -1, 1); err == nil {
		t.Error("NewLeafSpine accepted negative host bandwidth")
	}
}

func TestPathsAndRacks(t *testing.T) {
	topo, err := NewLeafSpine(2, 3, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if topo.N != 6 || topo.Racks() != 2 {
		t.Fatalf("topology = %d hosts / %d racks, want 6/2", topo.N, topo.Racks())
	}
	if topo.RackOf(0) != 0 || topo.RackOf(2) != 0 || topo.RackOf(3) != 1 {
		t.Error("rack assignment wrong")
	}
	// Intra-rack: 2 links; cross-rack: 4 links.
	if got := len(topo.Path(0, 2)); got != 2 {
		t.Errorf("intra-rack path has %d links, want 2", got)
	}
	if got := len(topo.Path(0, 4)); got != 4 {
		t.Errorf("cross-rack path has %d links, want 4", got)
	}
	// Oversubscription: 3 hosts × 10 / 15 = 2.
	if got := topo.Oversubscription(); got != 2 {
		t.Errorf("oversubscription = %g, want 2", got)
	}
}

func TestNonBlockingMatchesBaseModel(t *testing.T) {
	// On a single-rack fabric the closed-form CCT equals the base model's
	// max-port-load / bandwidth for any volume matrix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		topo, err := NewNonBlocking(n, 5)
		if err != nil {
			return false
		}
		vol := make([]int64, n*n)
		eg := make([]int64, n)
		in := make([]int64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				v := int64(rng.Intn(100))
				vol[i*n+j] = v
				eg[i] += v
				in[j] += v
			}
		}
		got, err := topo.SingleCoflowCCT(vol)
		if err != nil {
			return false
		}
		var maxLoad int64
		for i := 0; i < n; i++ {
			if eg[i] > maxLoad {
				maxLoad = eg[i]
			}
			if in[i] > maxLoad {
				maxLoad = in[i]
			}
		}
		want := float64(maxLoad) / 5
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOversubscribedUplinkDominates(t *testing.T) {
	// 2 racks × 2 hosts, host links 10 B/s, uplinks 5 B/s. One cross-rack
	// flow of 10 bytes: bound by the 5 B/s uplink ⇒ CCT 2, not 1.
	topo, err := NewLeafSpine(2, 2, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	vol := make([]int64, 16)
	vol[0*4+2] = 10
	cct, err := topo.SingleCoflowCCT(vol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cct-2) > 1e-9 {
		t.Errorf("cross-rack CCT = %g, want 2 (uplink-bound)", cct)
	}
	// The same flow within a rack is host-bound: CCT 1.
	vol = make([]int64, 16)
	vol[0*4+1] = 10
	cct, err = topo.SingleCoflowCCT(vol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cct-1) > 1e-9 {
		t.Errorf("intra-rack CCT = %g, want 1 (host-bound)", cct)
	}
}

func TestLinkLoadsValidation(t *testing.T) {
	topo, _ := NewNonBlocking(3, 1)
	if _, err := topo.LinkLoads(make([]int64, 5)); err == nil {
		t.Error("LinkLoads accepted a mis-sized matrix")
	}
}

func mkTopoCoflow(id int, arrival float64, flows ...[3]float64) *coflow.Coflow {
	fs := make([]coflow.Flow, len(flows))
	for i, f := range flows {
		fs[i] = coflow.Flow{ID: i, Src: int(f[0]), Dst: int(f[1]), Size: f[2]}
	}
	return coflow.New(id, "topo", arrival, fs)
}

func TestSimulateMatchesClosedFormSingleCoflow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		racks := 1 + rng.Intn(3)
		perRack := 2 + rng.Intn(3)
		topo, err := NewLeafSpine(racks, perRack, 10, 4)
		if err != nil {
			return false
		}
		n := topo.N
		vol := make([]int64, n*n)
		var flows [][3]float64
		for i := 0; i < 1+rng.Intn(8); i++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			v := int64(1 + rng.Intn(200))
			vol[src*n+dst] += v
			flows = append(flows, [3]float64{float64(src), float64(dst), float64(v)})
		}
		rep, err := topo.Simulate([]*coflow.Coflow{mkTopoCoflow(0, 0, flows...)})
		if err != nil {
			return false
		}
		want, err := topo.SingleCoflowCCT(vol)
		if err != nil {
			return false
		}
		return math.Abs(rep.MaxCCT-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSimulateOnlinePreemption(t *testing.T) {
	topo, err := NewLeafSpine(2, 2, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	big := mkTopoCoflow(0, 0, [3]float64{0, 2, 1000})
	small := mkTopoCoflow(1, 1, [3]float64{0, 2, 10})
	rep, err := topo.Simulate([]*coflow.Coflow{big, small})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CCTs[1]-1) > 1e-6 {
		t.Errorf("small coflow CCT = %g, want 1 (SEBF preemption)", rep.CCTs[1])
	}
	if math.Abs(rep.CCTs[0]-101) > 1e-6 {
		t.Errorf("big coflow CCT = %g, want 101", rep.CCTs[0])
	}
}

func TestSimulateRejectsBadFlow(t *testing.T) {
	topo, _ := NewNonBlocking(2, 1)
	if _, err := topo.Simulate([]*coflow.Coflow{mkTopoCoflow(0, 0, [3]float64{0, 0, 5})}); err == nil {
		t.Error("accepted a self-loop")
	}
	if _, err := topo.Simulate([]*coflow.Coflow{mkTopoCoflow(0, 0, [3]float64{0, 9, 5})}); err == nil {
		t.Error("accepted an out-of-range host")
	}
}

func zipfMatrix(rng *rand.Rand, n, p int) *partition.ChunkMatrix {
	m := partition.MustChunkMatrix(n, p)
	for k := 0; k < p; k++ {
		base := 10_000 + rng.Intn(500)
		for i := 0; i < n; i++ {
			m.Set(i, k, int64(base/(i+1)))
		}
	}
	return m
}

func TestRackAwareReducesToCCFWithoutOversubscription(t *testing.T) {
	// With an effectively infinite core (NewNonBlocking) the rack terms
	// never bind, so RackAwareCCF and plain CCF achieve the same T.
	rng := rand.New(rand.NewSource(9))
	m := zipfMatrix(rng, 8, 40)
	topo, err := NewNonBlocking(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	rackPl, err := RackAwareCCF{Topo: topo}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	plainPl, err := placement.CCF{}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	rackT, err := topo.PlacementCCT(m, rackPl)
	if err != nil {
		t.Fatal(err)
	}
	plainT, err := topo.PlacementCCT(m, plainPl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rackT-plainT) > 1e-9 {
		t.Errorf("non-blocking core: rack-aware T = %g, plain T = %g; want equal", rackT, plainT)
	}
}

func TestRackAwareBeatsPlainOnOversubscribedCore(t *testing.T) {
	// 4 racks × 4 hosts with 4× oversubscription. Plain CCF balances host
	// ports but happily crosses racks; the rack-aware variant must achieve
	// a lower link-level CCT.
	rng := rand.New(rand.NewSource(10))
	topo, err := NewLeafSpine(4, 4, 100, 100) // 4x oversubscription
	if err != nil {
		t.Fatal(err)
	}
	m := zipfMatrix(rng, topo.N, 80)
	rackPl, err := RackAwareCCF{Topo: topo}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	plainPl, err := placement.CCF{}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	rackT, err := topo.PlacementCCT(m, rackPl)
	if err != nil {
		t.Fatal(err)
	}
	plainT, err := topo.PlacementCCT(m, plainPl)
	if err != nil {
		t.Fatal(err)
	}
	if rackT > plainT {
		t.Errorf("oversubscribed core: rack-aware T = %g worse than plain %g", rackT, plainT)
	}
	if rackT == plainT {
		t.Logf("note: rack-aware tied plain CCF (T = %g); acceptable but unexpected on this instance", rackT)
	}
}

func TestRackAwareValidation(t *testing.T) {
	m := partition.MustChunkMatrix(4, 2)
	if _, err := (RackAwareCCF{}).Place(m, nil); err == nil {
		t.Error("accepted nil topology")
	}
	topo, _ := NewLeafSpine(2, 3, 1, 1) // 6 hosts != 4 nodes
	if _, err := (RackAwareCCF{Topo: topo}).Place(m, nil); err == nil {
		t.Error("accepted mismatched host count")
	}
	topo4, _ := NewLeafSpine(2, 2, 1, 1)
	bad := &partition.Loads{Egress: []int64{1}, Ingress: []int64{1, 2, 3, 4}}
	if _, err := (RackAwareCCF{Topo: topo4}).Place(m, bad); err == nil {
		t.Error("accepted mis-sized initial loads")
	}
}

func TestRackAwarePlacementIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		racks := 1 + rng.Intn(3)
		perRack := 1 + rng.Intn(4)
		topo, err := NewLeafSpine(racks, perRack, 10, 5)
		if err != nil {
			return false
		}
		p := 1 + rng.Intn(15)
		m := partition.MustChunkMatrix(topo.N, p)
		for i := range m.H {
			m.H[i] = int64(rng.Intn(50))
		}
		pl, err := RackAwareCCF{Topo: topo}.Place(m, nil)
		if err != nil {
			return false
		}
		return pl.Validate(topo.N, p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLeafSpineOnlineFBWorkload(t *testing.T) {
	// Integration: a Facebook-like online coflow mix over an oversubscribed
	// leaf-spine completes with all bytes delivered, and the same workload
	// on a non-blocking fabric is never slower (the core only removes
	// capacity).
	topo, err := NewLeafSpine(4, 4, 100e6, 200e6) // 2x oversubscription
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewNonBlocking(topo.N, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []*coflow.Coflow {
		cfs, err := fbtrace.Generate(fbtrace.Config{Machines: topo.N, Coflows: 30, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return cfs
	}
	var total float64
	for _, c := range mk() {
		total += c.TotalBytes()
	}
	over, err := topo.Simulate(mk())
	if err != nil {
		t.Fatal(err)
	}
	nb, err := flat.Simulate(mk())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(over.TotalBytes-total)/total > 1e-6 {
		t.Errorf("oversubscribed run moved %g bytes, want %g", over.TotalBytes, total)
	}
	if nb.Makespan > over.Makespan*(1+1e-9) {
		t.Errorf("non-blocking makespan %g exceeds oversubscribed %g", nb.Makespan, over.Makespan)
	}
	if len(over.CCTs) != 30 || len(nb.CCTs) != 30 {
		t.Errorf("completed %d/%d coflows, want 30 each", len(over.CCTs), len(nb.CCTs))
	}
}
