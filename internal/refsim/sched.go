package refsim

// Frozen pre-optimization copies of the internal/coflow schedulers. They
// operate on the same coflow.Coflow/Flow types as the production schedulers
// so an equivalence test can run either implementation over the same
// workload. Map-based demand accounting, per-epoch order slices, and
// sort.SliceStable are all retained on purpose.

import (
	"math"
	"sort"

	"ccf/internal/coflow"
)

// resetRates zeroes all rates so schedulers start from a clean slate.
func resetRates(active []*coflow.Coflow) {
	for _, c := range active {
		for _, f := range c.Flows {
			f.Rate = 0
		}
	}
}

// maddAllocate is the reference Minimum Allocation for Desired Duration.
func maddAllocate(c *coflow.Coflow, egCap, inCap []float64) float64 {
	egNeed := map[int]float64{}
	inNeed := map[int]float64{}
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		egNeed[f.Src] += f.Remaining
		inNeed[f.Dst] += f.Remaining
	}
	tau := 0.0
	for p, need := range egNeed {
		if egCap[p] <= 0 {
			return math.Inf(1)
		}
		if t := need / egCap[p]; t > tau {
			tau = t
		}
	}
	for p, need := range inNeed {
		if inCap[p] <= 0 {
			return math.Inf(1)
		}
		if t := need / inCap[p]; t > tau {
			tau = t
		}
	}
	if tau == 0 {
		return 0
	}
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		r := f.Remaining / tau
		f.Rate += r
		egCap[f.Src] -= r
		inCap[f.Dst] -= r
	}
	return tau
}

// waterFill is the reference progressive-filling max-min allocator.
func waterFill(flows []*coflow.Flow, egCap, inCap []float64) {
	st := make([]fillState, len(flows))
	unfrozen := 0
	for _, f := range flows {
		if !f.Done {
			unfrozen++
		}
	}
	for i, f := range flows {
		if f.Done {
			st[i].frozen = true
		}
	}
	for unfrozen > 0 {
		egCnt := map[int]int{}
		inCnt := map[int]int{}
		for i, f := range flows {
			if st[i].frozen {
				continue
			}
			egCnt[f.Src]++
			inCnt[f.Dst]++
		}
		alpha := math.Inf(1)
		for p, cnt := range egCnt {
			if a := egCap[p] / float64(cnt); a < alpha {
				alpha = a
			}
		}
		for p, cnt := range inCnt {
			if a := inCap[p] / float64(cnt); a < alpha {
				alpha = a
			}
		}
		if math.IsInf(alpha, 1) || alpha <= 0 {
			for i := range st {
				st[i].frozen = true
			}
			break
		}
		for i, f := range flows {
			if st[i].frozen {
				continue
			}
			f.Rate += alpha
			egCap[f.Src] -= alpha
			inCap[f.Dst] -= alpha
		}
		const eps = 1e-12
		newUnfrozen := 0
		for i, f := range flows {
			if st[i].frozen {
				continue
			}
			if egCap[f.Src] <= eps || inCap[f.Dst] <= eps {
				st[i].frozen = true
			} else {
				newUnfrozen++
			}
		}
		if newUnfrozen == unfrozen {
			freezeTightest(flows, st, egCap, inCap)
			newUnfrozen = unfrozen - 1
		}
		unfrozen = newUnfrozen
	}
}

type fillState struct{ frozen bool }

func freezeTightest(flows []*coflow.Flow, st []fillState, egCap, inCap []float64) {
	best, bestCap := -1, math.Inf(1)
	for i, f := range flows {
		if st[i].frozen {
			continue
		}
		c := math.Min(egCap[f.Src], inCap[f.Dst])
		if c < bestCap {
			best, bestCap = i, c
		}
	}
	if best >= 0 {
		st[best].frozen = true
	}
}

// activeFlows flattens the non-done flows of the active coflows.
func activeFlows(active []*coflow.Coflow) []*coflow.Flow {
	var out []*coflow.Flow
	for _, c := range active {
		for _, f := range c.Flows {
			if !f.Done {
				out = append(out, f)
			}
		}
	}
	return out
}

// orderedMADD is the reference priority-ordered scheduler engine.
type orderedMADD struct {
	name     string
	less     func(a, b *coflow.Coflow, n int) bool
	backfill bool
}

func (o orderedMADD) Name() string { return o.name }

func (o orderedMADD) Allocate(_ float64, active []*coflow.Coflow, egCap, inCap []float64) {
	resetRates(active)
	n := len(egCap)
	order := append([]*coflow.Coflow(nil), active...)
	sort.SliceStable(order, func(a, b int) bool { return o.less(order[a], order[b], n) })
	for _, c := range order {
		maddAllocate(c, egCap, inCap)
	}
	if o.backfill {
		waterFill(activeFlows(active), egCap, inCap)
	}
}

// NewVarys returns the reference SEBF+MADD scheduler.
func NewVarys() coflow.Scheduler {
	return orderedMADD{
		name: "ref-varys-sebf",
		less: func(a, b *coflow.Coflow, n int) bool {
			ga, gb := a.Bottleneck(n), b.Bottleneck(n)
			if ga != gb {
				return ga < gb
			}
			return a.ID < b.ID
		},
		backfill: true,
	}
}

// NewFIFO returns the reference arrival-ordered scheduler.
func NewFIFO() coflow.Scheduler {
	return orderedMADD{
		name: "ref-fifo",
		less: func(a, b *coflow.Coflow, _ int) bool {
			if a.Arrival != b.Arrival {
				return a.Arrival < b.Arrival
			}
			return a.ID < b.ID
		},
		backfill: true,
	}
}

// NewSCF returns the reference smallest-remaining-coflow-first scheduler.
func NewSCF() coflow.Scheduler {
	return orderedMADD{
		name: "ref-scf",
		less: func(a, b *coflow.Coflow, _ int) bool {
			ra, rb := a.RemainingBytes(), b.RemainingBytes()
			if ra != rb {
				return ra < rb
			}
			return a.ID < b.ID
		},
		backfill: true,
	}
}

// NewNCF returns the reference narrowest-coflow-first scheduler.
func NewNCF() coflow.Scheduler {
	return orderedMADD{
		name: "ref-ncf",
		less: func(a, b *coflow.Coflow, _ int) bool {
			wa, wb := a.Width(), b.Width()
			if wa != wb {
				return wa < wb
			}
			return a.ID < b.ID
		},
		backfill: true,
	}
}

// Aalo is the reference D-CLAS scheduler.
type Aalo struct {
	FirstThreshold float64
	Multiplier     float64
}

// NewAalo returns a reference Aalo with the paper defaults.
func NewAalo() *Aalo { return &Aalo{FirstThreshold: 10e6, Multiplier: 10} }

// Name implements coflow.Scheduler.
func (a *Aalo) Name() string { return "ref-aalo-dclas" }

func (a *Aalo) queueOf(c *coflow.Coflow) int {
	q := 0
	th := a.FirstThreshold
	for c.SentBytes >= th && q < 32 {
		th *= a.Multiplier
		q++
	}
	return q
}

// Allocate implements coflow.Scheduler.
func (a *Aalo) Allocate(_ float64, active []*coflow.Coflow, egCap, inCap []float64) {
	resetRates(active)
	order := append([]*coflow.Coflow(nil), active...)
	sort.SliceStable(order, func(x, y int) bool {
		qx, qy := a.queueOf(order[x]), a.queueOf(order[y])
		if qx != qy {
			return qx < qy
		}
		if order[x].Arrival != order[y].Arrival {
			return order[x].Arrival < order[y].Arrival
		}
		return order[x].ID < order[y].ID
	})
	for _, c := range order {
		maddAllocate(c, egCap, inCap)
	}
	waterFill(activeFlows(active), egCap, inCap)
}

// PerFlowFair is the reference coflow-agnostic max-min baseline.
type PerFlowFair struct{}

// Name implements coflow.Scheduler.
func (PerFlowFair) Name() string { return "ref-per-flow-fair" }

// Allocate implements coflow.Scheduler.
func (PerFlowFair) Allocate(_ float64, active []*coflow.Coflow, egCap, inCap []float64) {
	resetRates(active)
	waterFill(activeFlows(active), egCap, inCap)
}

// SequentialByDest is the reference uncoordinated worst-schedule baseline.
type SequentialByDest struct{}

// Name implements coflow.Scheduler.
func (SequentialByDest) Name() string { return "ref-sequential-by-dest" }

// Allocate implements coflow.Scheduler.
func (SequentialByDest) Allocate(_ float64, active []*coflow.Coflow, egCap, inCap []float64) {
	resetRates(active)
	flows := activeFlows(active)
	cur := -1
	for _, f := range flows {
		if cur == -1 || f.Dst < cur {
			cur = f.Dst
		}
	}
	if cur == -1 {
		return
	}
	var subset []*coflow.Flow
	for _, f := range flows {
		if f.Dst == cur {
			subset = append(subset, f)
		}
	}
	waterFill(subset, egCap, inCap)
}

// admission state of a coflow within one reference deadline simulation.
type admission int

const (
	undecided admission = iota
	admitted
	rejected
)

// Deadline is the reference Varys deadline-mode scheduler.
type Deadline struct {
	state map[int]admission
}

// NewVarysDeadline returns a fresh reference deadline-mode scheduler.
func NewVarysDeadline() *Deadline {
	return &Deadline{state: make(map[int]admission)}
}

// Name implements coflow.Scheduler.
func (d *Deadline) Name() string { return "ref-varys-deadline" }

// Admitted reports the admission decision for a coflow ID.
func (d *Deadline) Admitted(id int) bool { return d.state[id] == admitted }

// Allocate implements coflow.Scheduler.
func (d *Deadline) Allocate(now float64, active []*coflow.Coflow, egCap, inCap []float64) {
	resetRates(active)
	order := append([]*coflow.Coflow(nil), active...)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].Arrival != order[b].Arrival {
			return order[a].Arrival < order[b].Arrival
		}
		return order[a].ID < order[b].ID
	})

	for _, c := range order {
		if c.Deadline <= 0 {
			continue
		}
		switch d.state[c.ID] {
		case rejected:
			continue
		case undecided:
			if d.admit(c, now, egCap, inCap) {
				d.state[c.ID] = admitted
			} else {
				d.state[c.ID] = rejected
				continue
			}
		}
		timeLeft := c.Arrival + c.Deadline - now
		if timeLeft <= 0 {
			maddAllocate(c, egCap, inCap)
			continue
		}
		for _, f := range c.Flows {
			if f.Done {
				continue
			}
			r := f.Remaining / timeLeft
			r = math.Min(r, math.Min(egCap[f.Src], inCap[f.Dst]))
			if r < 0 {
				r = 0
			}
			f.Rate += r
			egCap[f.Src] -= r
			inCap[f.Dst] -= r
		}
	}
	waterFill(activeFlows(active), egCap, inCap)
}

// admit checks whether finish-at-deadline rates fit the residual capacity.
func (d *Deadline) admit(c *coflow.Coflow, now float64, egCap, inCap []float64) bool {
	timeLeft := c.Arrival + c.Deadline - now
	if timeLeft <= 0 {
		return false
	}
	egNeed := map[int]float64{}
	inNeed := map[int]float64{}
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		egNeed[f.Src] += f.Remaining / timeLeft
		inNeed[f.Dst] += f.Remaining / timeLeft
	}
	const tol = 1 + 1e-9
	for p, need := range egNeed {
		if need > egCap[p]*tol {
			return false
		}
	}
	for p, need := range inNeed {
		if need > inCap[p]*tol {
			return false
		}
	}
	return true
}
