// Package refsim is a frozen, unoptimized copy of the event-driven simulator
// and the coflow schedulers as they existed before the allocation-free hot
// path landed in internal/netsim and internal/coflow. It exists for one
// purpose: the golden equivalence tests pin that the optimized simulator
// produces bit-identical Reports (CCTs, makespan, epoch counts, byte totals)
// to this reference on randomized workloads.
//
// Nothing here should ever be optimized or "cleaned up" — any change to the
// numerical behaviour of the production path must either reproduce these
// results exactly or consciously retire this package along with the
// equivalence guarantee. The implementation allocates freely (per-epoch maps,
// slices, sorts), which is exactly what the production path no longer does.
package refsim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

// ErrStalled mirrors netsim.ErrStalled for the reference loop.
var ErrStalled = errors.New("refsim: simulation stalled with pending flows")

// completionEps matches the production simulator's completion tolerance.
const completionEps = 1e-6

// Simulator is the reference twin of netsim.Simulator: same fields, same
// semantics, pre-optimization implementation.
type Simulator struct {
	Fabric    netsim.Fabric
	Sched     coflow.Scheduler
	MaxEpochs int
	Horizon   float64
	Events    []netsim.CapacityEvent
	Deps      map[int][]int
}

// NewSimulator wires a fabric and a scheduler with the production default
// epoch bound.
func NewSimulator(f netsim.Fabric, s coflow.Scheduler) *Simulator {
	return &Simulator{Fabric: f, Sched: s, MaxEpochs: 10_000_000}
}

// Run is a verbatim copy of the pre-optimization netsim.(*Simulator).Run.
func (s *Simulator) Run(coflows []*coflow.Coflow) (*netsim.Report, error) {
	for _, c := range coflows {
		for _, f := range c.Flows {
			if f.Src < 0 || f.Src >= s.Fabric.Ports || f.Dst < 0 || f.Dst >= s.Fabric.Ports {
				return nil, fmt.Errorf("refsim: flow %d of coflow %d uses port (%d→%d) outside fabric of %d ports",
					f.ID, c.ID, f.Src, f.Dst, s.Fabric.Ports)
			}
			if f.Src == f.Dst {
				return nil, fmt.Errorf("refsim: flow %d of coflow %d is a self-loop at port %d", f.ID, c.ID, f.Src)
			}
			f.Remaining = f.Size
			f.Done = f.Size <= 0
			f.Rate = 0
		}
		c.Completed = false
		c.SentBytes = 0
	}

	pending := append([]*coflow.Coflow(nil), coflows...)
	sort.SliceStable(pending, func(a, b int) bool { return pending[a].Arrival < pending[b].Arrival })

	// Dependency bookkeeping.
	completed := make(map[int]bool, len(coflows))
	if len(s.Deps) > 0 {
		known := make(map[int]bool, len(coflows))
		for _, c := range coflows {
			known[c.ID] = true
		}
		for id, deps := range s.Deps {
			if !known[id] {
				return nil, fmt.Errorf("refsim: dependency declared for unknown coflow %d", id)
			}
			for _, dep := range deps {
				if !known[dep] {
					return nil, fmt.Errorf("refsim: coflow %d depends on unknown coflow %d", id, dep)
				}
				if dep == id {
					return nil, fmt.Errorf("refsim: coflow %d depends on itself", id)
				}
			}
		}
	}
	depsDone := func(c *coflow.Coflow) bool {
		for _, dep := range s.Deps[c.ID] {
			if !completed[dep] {
				return false
			}
		}
		return true
	}

	events := append([]netsim.CapacityEvent(nil), s.Events...)
	sort.SliceStable(events, func(a, b int) bool { return events[a].Time < events[b].Time })
	for _, ev := range events {
		if ev.Port < 0 || ev.Port >= s.Fabric.Ports {
			return nil, fmt.Errorf("refsim: capacity event targets port %d outside fabric of %d ports", ev.Port, s.Fabric.Ports)
		}
		if ev.EgressFactor < 0 || ev.IngressFactor < 0 {
			return nil, fmt.Errorf("refsim: capacity event at t=%g has negative factor", ev.Time)
		}
	}
	egFac := make([]float64, s.Fabric.Ports)
	inFac := make([]float64, s.Fabric.Ports)
	for p := range egFac {
		egFac[p], inFac[p] = 1, 1
	}

	var active []*coflow.Coflow
	now := 0.0
	if len(pending) > 0 {
		now = pending[0].Arrival
	}
	rep := &netsim.Report{CCTs: make(map[int]float64, len(coflows))}

	egCap := make([]float64, s.Fabric.Ports)
	inCap := make([]float64, s.Fabric.Ports)

	for epoch := 0; ; epoch++ {
		if epoch >= s.MaxEpochs {
			return nil, fmt.Errorf("refsim: exceeded %d epochs (scheduler %q livelock?)", s.MaxEpochs, s.Sched.Name())
		}
		// Admit arrivals (time reached and dependencies completed) and
		// apply due capacity events.
		stillPending := pending[:0]
		for _, c := range pending {
			if c.Arrival <= now+1e-12 && depsDone(c) {
				if c.Arrival < now {
					c.Arrival = now
				}
				active = append(active, c)
				continue
			}
			stillPending = append(stillPending, c)
		}
		pending = stillPending
		for len(events) > 0 && events[0].Time <= now+1e-12 {
			ev := events[0]
			events = events[1:]
			egFac[ev.Port] = ev.EgressFactor
			inFac[ev.Port] = ev.IngressFactor
		}
		// Retire completed coflows.
		live := active[:0]
		for _, c := range active {
			if coflowDone(c) {
				if !c.Completed {
					c.Completed = true
					c.Completion = now
					completed[c.ID] = true
					cct, err := c.CCT()
					if err != nil {
						return nil, err
					}
					rep.CCTs[c.ID] = cct
				}
				continue
			}
			live = append(live, c)
		}
		active = live

		if s.Horizon > 0 && now >= s.Horizon-1e-12 {
			now = s.Horizon
			break
		}
		if len(active) == 0 {
			if len(pending) == 0 {
				break
			}
			next := math.Inf(1)
			for _, c := range pending {
				if depsDone(c) {
					next = c.Arrival
					break // pending stays sorted by arrival
				}
			}
			if math.IsInf(next, 1) {
				return nil, fmt.Errorf("refsim: %d coflows blocked on dependencies that can never complete (cycle?)", len(pending))
			}
			if s.Horizon > 0 && next >= s.Horizon {
				now = s.Horizon
				break
			}
			if next > now {
				now = next
			}
			continue
		}

		// Scheduling epoch.
		rep.Epochs++
		for p := 0; p < s.Fabric.Ports; p++ {
			egCap[p] = s.Fabric.EgressCap[p] * egFac[p]
			inCap[p] = s.Fabric.IngressCap[p] * inFac[p]
		}
		s.Sched.Allocate(now, active, egCap, inCap)
		if err := s.checkRates(active, egFac, inFac); err != nil {
			return nil, err
		}

		// Time to next completion at current rates.
		dt := math.Inf(1)
		for _, c := range active {
			for _, f := range c.Flows {
				if f.Done || f.Rate <= 0 {
					continue
				}
				if t := f.Remaining / f.Rate; t < dt {
					dt = t
				}
			}
		}
		for _, c := range pending {
			if depsDone(c) {
				if t := c.Arrival - now; t >= 0 && t < dt {
					dt = t
				}
				break
			}
		}
		if len(events) > 0 {
			if t := events[0].Time - now; t < dt {
				dt = t
			}
		}
		if s.Horizon > 0 && now+dt > s.Horizon {
			dt = s.Horizon - now
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("%w: %d coflows active under scheduler %q", ErrStalled, len(active), s.Sched.Name())
		}

		// Advance.
		now += dt
		for _, c := range active {
			for _, f := range c.Flows {
				if f.Done || f.Rate <= 0 {
					continue
				}
				moved := f.Rate * dt
				if moved > f.Remaining {
					moved = f.Remaining
				}
				f.Remaining -= moved
				c.SentBytes += moved
				rep.TotalBytes += moved
				if f.Remaining <= completionEps {
					f.Remaining = 0
					f.Done = true
					f.EndTime = now
				}
			}
		}
	}

	rep.Makespan = now
	for _, cct := range rep.CCTs {
		rep.AvgCCT += cct
		if cct > rep.MaxCCT {
			rep.MaxCCT = cct
		}
	}
	if len(rep.CCTs) > 0 {
		rep.AvgCCT /= float64(len(rep.CCTs))
	}
	return rep, nil
}

// checkRates is the reference copy of the per-epoch capacity validator.
func (s *Simulator) checkRates(active []*coflow.Coflow, egFac, inFac []float64) error {
	eg := make([]float64, s.Fabric.Ports)
	in := make([]float64, s.Fabric.Ports)
	for _, c := range active {
		for _, f := range c.Flows {
			if f.Done {
				continue
			}
			if f.Rate < 0 {
				return fmt.Errorf("refsim: scheduler %q set negative rate %g on flow %d", s.Sched.Name(), f.Rate, f.ID)
			}
			eg[f.Src] += f.Rate
			in[f.Dst] += f.Rate
		}
	}
	const tolAbs = 1e-9
	tol := 1 + 1e-3
	for p := 0; p < s.Fabric.Ports; p++ {
		egLim := s.Fabric.EgressCap[p] * egFac[p] * tol
		inLim := s.Fabric.IngressCap[p] * inFac[p] * tol
		if eg[p] > egLim+tolAbs || in[p] > inLim+tolAbs {
			return fmt.Errorf("refsim: scheduler %q oversubscribed port %d (eg=%.3g/%.3g in=%.3g/%.3g)",
				s.Sched.Name(), p, eg[p], egLim, in[p], inLim)
		}
	}
	return nil
}

func coflowDone(c *coflow.Coflow) bool {
	for _, f := range c.Flows {
		if !f.Done {
			return false
		}
	}
	return true
}
