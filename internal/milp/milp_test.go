package milp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/partition"
	"ccf/internal/placement"
)

// bruteForce enumerates all n^p assignments and returns the minimum T.
func bruteForce(m *partition.ChunkMatrix, initial *partition.Loads) int64 {
	n, p := m.N, m.P
	dest := make([]int, p)
	best := int64(1<<62 - 1)
	var rec func(k int)
	rec = func(k int) {
		if k == p {
			pl := &partition.Placement{Dest: append([]int(nil), dest...)}
			l, err := partition.ComputeLoads(m, pl, initial)
			if err != nil {
				panic(err)
			}
			if t := l.Max(); t < best {
				best = t
			}
			return
		}
		for d := 0; d < n; d++ {
			dest[k] = d
			rec(k + 1)
		}
	}
	rec(0)
	return best
}

func randomInstance(rng *rand.Rand, n, p, maxChunk int) *partition.ChunkMatrix {
	m := partition.MustChunkMatrix(n, p)
	for i := range m.H {
		m.H[i] = int64(rng.Intn(maxChunk))
	}
	return m
}

func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2) // 2-3 nodes
		p := 1 + rng.Intn(6) // 1-6 partitions: ≤ 3^6 = 729 assignments
		m := randomInstance(rng, n, p, 30)
		res, err := Solve(m, nil, Options{})
		if err != nil || !res.Optimal {
			return false
		}
		return res.T == bruteForce(m, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSolveMatchesBruteForceWithInitialLoads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 3, 1+rng.Intn(5)
		m := randomInstance(rng, n, p, 25)
		init := &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)}
		for i := 0; i < n; i++ {
			init.Egress[i] = int64(rng.Intn(40))
			init.Ingress[i] = int64(rng.Intn(40))
		}
		res, err := Solve(m, init, Options{})
		if err != nil || !res.Optimal {
			return false
		}
		return res.T == bruteForce(m, init)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolvePlacementConsistentWithReportedT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		m := randomInstance(rng, 2+rng.Intn(4), 2+rng.Intn(8), 50)
		res, err := Solve(m, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		l, err := partition.ComputeLoads(m, res.Placement, nil)
		if err != nil {
			t.Fatal(err)
		}
		if l.Max() != res.T {
			t.Fatalf("reported T=%d but placement has T=%d", res.T, l.Max())
		}
	}
}

func TestHeuristicNearOptimal(t *testing.T) {
	// The CCF heuristic should stay close to the certified optimum on
	// small instances — the paper's justification for replacing Gurobi.
	rng := rand.New(rand.NewSource(77))
	var worst float64 = 1
	for trial := 0; trial < 60; trial++ {
		n, p := 3+rng.Intn(3), 4+rng.Intn(6)
		m := randomInstance(rng, n, p, 100)
		ev, err := placement.Evaluate(placement.CCF{}, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(m, nil, Options{UpperBound: ev.BottleneckBytes})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatalf("trial %d: solver did not certify n=%d p=%d", trial, n, p)
		}
		if res.T > ev.BottleneckBytes {
			t.Fatalf("exact T=%d worse than heuristic %d", res.T, ev.BottleneckBytes)
		}
		if res.T > 0 {
			if r := float64(ev.BottleneckBytes) / float64(res.T); r > worst {
				worst = r
			}
		}
	}
	if worst > 1.5 {
		t.Errorf("heuristic/optimal ratio reached %.3f; want ≤ 1.5 on random small instances", worst)
	}
	t.Logf("worst heuristic/optimal ratio over 60 instances: %.4f", worst)
}

func TestUpperBoundSeedAccelerates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomInstance(rng, 4, 9, 60)
	ev, err := placement.Evaluate(placement.CCF{}, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	unseeded, err := Solve(m, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := Solve(m, nil, Options{UpperBound: ev.BottleneckBytes})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.T != unseeded.T {
		t.Fatalf("seeded optimum %d != unseeded optimum %d", seeded.T, unseeded.T)
	}
	if seeded.Explored > unseeded.Explored {
		t.Errorf("seeding with the heuristic bound explored more nodes (%d > %d)", seeded.Explored, unseeded.Explored)
	}
}

func TestExplorationCapReturnsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomInstance(rng, 6, 14, 80)
	res, err := Solve(m, nil, Options{MaxExplored: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Error("10-node budget cannot certify a 6×14 instance")
	}
	if err := res.Placement.Validate(6, 14); err != nil {
		t.Errorf("capped solve returned invalid placement: %v", err)
	}
	l, err := partition.ComputeLoads(m, res.Placement, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Max() != res.T {
		t.Errorf("capped solve reports T=%d, placement has %d", res.T, l.Max())
	}
}

func TestSolveSingleNode(t *testing.T) {
	m := partition.MustChunkMatrix(1, 3)
	m.Set(0, 0, 5)
	m.Set(0, 1, 7)
	res, err := Solve(m, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 {
		t.Errorf("single node: T = %d, want 0 (everything local)", res.T)
	}
	if !res.Optimal {
		t.Error("single-node instance not certified")
	}
}

func TestSolveZeroMatrix(t *testing.T) {
	m := partition.MustChunkMatrix(3, 4)
	res, err := Solve(m, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || !res.Optimal {
		t.Errorf("zero matrix: T=%d optimal=%v, want 0/true", res.T, res.Optimal)
	}
}

func TestSolveRejectsBadInputs(t *testing.T) {
	m := partition.MustChunkMatrix(2, 2)
	m.Set(0, 0, -1)
	if _, err := Solve(m, nil, Options{}); err == nil {
		t.Error("Solve accepted a negative chunk")
	}
	m2 := partition.MustChunkMatrix(2, 2)
	bad := &partition.Loads{Egress: []int64{1}, Ingress: []int64{1, 2}}
	if _, err := Solve(m2, bad, Options{}); err == nil {
		t.Error("Solve accepted mis-sized initial loads")
	}
}

func TestMotivatingInstanceOptimum(t *testing.T) {
	// The 3-node example of the paper's Figure 1: optimal T must be 3
	// (SP1's bottleneck), strictly better than the traffic-optimal SP2's 4.
	m := partition.MustChunkMatrix(3, 4)
	m.Set(0, 0, 3)
	m.Set(2, 0, 1)
	m.Set(0, 1, 3)
	m.Set(1, 1, 6)
	m.Set(0, 2, 1)
	m.Set(1, 2, 2)
	m.Set(1, 3, 1)
	m.Set(2, 3, 2)
	res, err := Solve(m, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.T != 3 {
		t.Errorf("motivating instance: T=%d optimal=%v, want 3/true", res.T, res.Optimal)
	}
}
