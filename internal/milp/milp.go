// Package milp solves the paper's co-optimization model (3) exactly:
//
//	minimize  T
//	s.t.      Σ_j Σ_k h_ik·x_jk ≤ T   ∀ i (egress of node i, j ≠ i)
//	          Σ_i Σ_k h_ik·x_jk ≤ T   ∀ j (ingress of node j, i ≠ j)
//	          Σ_j x_jk = 1, x_jk ∈ {0,1}
//
// The paper solves this with Gurobi; this package substitutes a
// branch-and-bound search that certifies optimality on the small instances
// where the MILP route is practical (the paper itself reports half an hour
// of Gurobi time at n=500, p=7500, which is why CCF ships the heuristic).
//
// The key structural observation that keeps the search cheap: the final
// egress of node i depends only on which partitions node i itself keeps,
//
//	egress_i = rowTotal_i + init_i − Σ_{k : dest k = i} h_ik,
//
// so the DFS state is just per-node kept-bytes and ingress-bytes, and both
// admit monotone lower bounds for pruning.
package milp

import (
	"fmt"
	"sort"

	"ccf/internal/partition"
)

// Options tunes the search.
type Options struct {
	// MaxExplored caps the number of DFS nodes visited; 0 means the
	// package default (2 million). When the cap is hit the best incumbent
	// is returned with Optimal = false.
	MaxExplored int64
	// UpperBound seeds the incumbent with a known-feasible bottleneck
	// (e.g. from the CCF heuristic); 0 means unseeded.
	UpperBound int64
}

const defaultMaxExplored = 2_000_000

// Result is the outcome of a Solve call.
type Result struct {
	Placement *partition.Placement
	// T is the bottleneck port load of Placement (the MILP objective).
	T int64
	// Optimal reports whether the search proved T optimal (search space
	// exhausted) rather than stopping at the exploration cap.
	Optimal bool
	// Explored counts DFS nodes visited.
	Explored int64
}

type solver struct {
	m        *partition.ChunkMatrix
	n, p     int
	order    []int   // partitions in branching order (descending total)
	tot      []int64 // per-partition totals
	rowTot   []int64 // per-node resident bytes
	initEg   []int64
	initIn   []int64
	minRecv  []int64   // per-partition min over j of (tot_k − h_jk): cheapest possible ingress cost
	sufChunk [][]int64 // sufChunk[d][idx] = Σ of h_d,order[idx:]: max bytes node d could still keep
	sufMin   []int64   // Σ of minRecv over order[idx:]

	kept    []int64 // per node, bytes kept so far
	ingress []int64 // per node, ingress so far
	dest    []int

	best      []int
	bestT     int64
	explored  int64
	maxExplor int64
	complete  bool
}

// Solve runs branch and bound over the chunk matrix with optional initial
// port loads (broadcast volumes from skew handling). It always returns a
// feasible placement; Result.Optimal says whether it is certified.
func Solve(m *partition.ChunkMatrix, initial *partition.Loads, opts Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := &solver{
		m: m, n: m.N, p: m.P,
		tot:       m.PartitionTotals(),
		rowTot:    m.NodeTotals(),
		initEg:    make([]int64, m.N),
		initIn:    make([]int64, m.N),
		kept:      make([]int64, m.N),
		ingress:   make([]int64, m.N),
		dest:      make([]int, m.P),
		maxExplor: opts.MaxExplored,
	}
	if s.maxExplor == 0 {
		s.maxExplor = defaultMaxExplored
	}
	if initial != nil {
		if len(initial.Egress) != m.N || len(initial.Ingress) != m.N {
			return nil, fmt.Errorf("milp: initial loads sized %d/%d, want %d",
				len(initial.Egress), len(initial.Ingress), m.N)
		}
		copy(s.initEg, initial.Egress)
		copy(s.initIn, initial.Ingress)
		copy(s.ingress, initial.Ingress)
	}

	s.order = make([]int, s.p)
	for k := range s.order {
		s.order[k] = k
	}
	sort.SliceStable(s.order, func(a, b int) bool { return s.tot[s.order[a]] > s.tot[s.order[b]] })

	s.minRecv = make([]int64, s.p)
	for k := 0; k < s.p; k++ {
		var maxChunk int64
		for i := 0; i < s.n; i++ {
			if v := m.At(i, k); v > maxChunk {
				maxChunk = v
			}
		}
		s.minRecv[k] = s.tot[k] - maxChunk
	}
	s.sufMin = make([]int64, s.p+1)
	for idx := s.p - 1; idx >= 0; idx-- {
		s.sufMin[idx] = s.sufMin[idx+1] + s.minRecv[s.order[idx]]
	}
	s.sufChunk = make([][]int64, s.n)
	for d := 0; d < s.n; d++ {
		suf := make([]int64, s.p+1)
		for idx := s.p - 1; idx >= 0; idx-- {
			suf[idx] = suf[idx+1] + m.At(d, s.order[idx])
		}
		s.sufChunk[d] = suf
	}

	s.bestT = opts.UpperBound
	if s.bestT <= 0 {
		s.bestT = 1<<62 - 1
	} else {
		s.bestT++ // search strictly better than the seed
	}
	s.complete = s.dfs(0)

	if s.best == nil {
		// No assignment beat the seeded upper bound (or cap hit before any
		// leaf); fall back to a greedy completion so we always return a
		// feasible placement.
		pl, t := s.greedy()
		return &Result{Placement: pl, T: t, Optimal: false, Explored: s.explored}, nil
	}
	pl := &partition.Placement{Dest: append([]int(nil), s.best...)}
	loads, err := partition.ComputeLoads(m, pl, initial)
	if err != nil {
		return nil, fmt.Errorf("milp: internal error, produced invalid placement: %w", err)
	}
	return &Result{Placement: pl, T: loads.Max(), Optimal: s.complete, Explored: s.explored}, nil
}

// lowerBound computes an admissible bound on the final T given the first idx
// partitions (in branching order) are assigned.
func (s *solver) lowerBound(idx int) int64 {
	var lb int64
	// Ingress can only grow; egress of node i is at least
	// rowTot+init−kept−(chunks of i it could still keep).
	for i := 0; i < s.n; i++ {
		if v := s.ingress[i]; v > lb {
			lb = v
		}
		eg := s.rowTot[i] + s.initEg[i] - s.kept[i] - s.sufChunk[i][idx]
		if eg > lb {
			lb = eg
		}
	}
	// Volume bound: the remaining partitions contribute at least sufMin
	// ingress in total, spread over n receivers at best.
	var inSum int64
	for i := 0; i < s.n; i++ {
		inSum += s.ingress[i]
	}
	avg := (inSum + s.sufMin[idx] + int64(s.n) - 1) / int64(s.n)
	if avg > lb {
		lb = avg
	}
	return lb
}

func (s *solver) dfs(idx int) bool {
	s.explored++
	if s.explored > s.maxExplor {
		return false
	}
	if idx == s.p {
		t := s.leafT()
		if t < s.bestT {
			s.bestT = t
			s.best = append(s.best[:0], s.dest...)
		}
		return true
	}
	if s.lowerBound(idx) >= s.bestT {
		return true // pruned, but subtree fully accounted for
	}
	k := s.order[idx]

	// Order children by their immediate T so the first leaf is good.
	type cand struct {
		d int
		t int64
	}
	cands := make([]cand, s.n)
	for d := 0; d < s.n; d++ {
		in := s.ingress[d] + s.tot[k] - s.m.At(d, k)
		cands[d] = cand{d, in}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].t != cands[b].t {
			return cands[a].t < cands[b].t
		}
		return cands[a].d < cands[b].d
	})

	complete := true
	for _, c := range cands {
		d := c.d
		h := s.m.At(d, k)
		add := s.tot[k] - h
		if s.ingress[d]+add >= s.bestT {
			continue // this child (and, since sorted, worse ones) cannot improve
		}
		s.dest[k] = d
		s.kept[d] += h
		s.ingress[d] += add
		if !s.dfs(idx + 1) {
			complete = false
		}
		s.kept[d] -= h
		s.ingress[d] -= add
		if !complete {
			break
		}
	}
	return complete
}

// leafT computes the exact T of the fully assigned state.
func (s *solver) leafT() int64 {
	var t int64
	for i := 0; i < s.n; i++ {
		eg := s.rowTot[i] + s.initEg[i] - s.kept[i]
		if eg > t {
			t = eg
		}
		if s.ingress[i] > t {
			t = s.ingress[i]
		}
	}
	return t
}

// greedy completes a feasible placement when the search found no incumbent:
// each partition (branching order) goes to the node minimising the running
// max port load. This mirrors CCF's greedy but with the milp state.
func (s *solver) greedy() (*partition.Placement, int64) {
	kept := make([]int64, s.n)
	ingress := append([]int64(nil), s.initIn...)
	dest := make([]int, s.p)
	for idx := 0; idx < s.p; idx++ {
		k := s.order[idx]
		bestD, bestV := 0, int64(1<<62-1)
		for d := 0; d < s.n; d++ {
			v := ingress[d] + s.tot[k] - s.m.At(d, k)
			if v < bestV {
				bestD, bestV = d, v
			}
		}
		dest[k] = bestD
		kept[bestD] += s.m.At(bestD, k)
		ingress[bestD] += s.tot[k] - s.m.At(bestD, k)
	}
	var t int64
	for i := 0; i < s.n; i++ {
		eg := s.rowTot[i] + s.initEg[i] - kept[i]
		if eg > t {
			t = eg
		}
		if ingress[i] > t {
			t = ingress[i]
		}
	}
	return &partition.Placement{Dest: dest}, t
}
