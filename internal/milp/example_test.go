package milp_test

import (
	"fmt"

	"ccf/internal/milp"
	"ccf/internal/partition"
)

// The branch-and-bound solver certifies the optimum of the paper's
// motivating instance: T = 3, strictly better than the traffic-minimal
// plan's bottleneck of 4.
func ExampleSolve() {
	m := partition.MustChunkMatrix(3, 4)
	m.Set(0, 0, 3)
	m.Set(2, 0, 1)
	m.Set(0, 1, 3)
	m.Set(1, 1, 6)
	m.Set(0, 2, 1)
	m.Set(1, 2, 2)
	m.Set(1, 3, 1)
	m.Set(2, 3, 2)

	res, err := milp.Solve(m, nil, milp.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("optimal T = %d (certified: %v), destinations %v\n", res.T, res.Optimal, res.Placement.Dest)
	// Output:
	// optimal T = 3 (certified: true), destinations [0 1 0 2]
}
